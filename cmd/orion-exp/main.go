// Command orion-exp regenerates every figure of the paper's evaluation
// (Section 4): Figure 5 (wormhole vs virtual-channel on-chip routers),
// Figure 6 (uniform vs broadcast power maps), Figure 7 (crossbar vs
// central-buffered chip-to-chip routers), and the Section 3.3 walkthrough
// energies. Output is plain text tables, one series per row, mirroring the
// paper's axes. EXPERIMENTS.md is written from this tool's output.
//
// Usage:
//
//	orion-exp [-fig all|walkthrough|5|6|7|ablations] [-samples N] [-seed N]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// The default sample size follows the paper (10,000 packets per run);
// -samples 2000 gives a quick pass with the same shapes. -cpuprofile and
// -memprofile write runtime/pprof profiles of the whole run for analysis
// with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"orion"
	"orion/internal/prof"
)

var (
	figFlag     = flag.String("fig", "all", "which figure to run: all, walkthrough, 5, 6, 7, ablations")
	samplesFlag = flag.Int("samples", 0, "sample packets per run (0 = paper's 10000)")
	seedFlag    = flag.Int64("seed", 1, "workload seed")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
)

func main() {
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orion-exp: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "orion-exp: %v\n", err)
			os.Exit(1)
		}
	}()
	opt := orion.ExperimentOptions{SamplePackets: *samplesFlag, Seed: *seedFlag}

	start := time.Now()
	run := func(name string, f func(orion.ExperimentOptions) error) {
		if *figFlag != "all" && *figFlag != name {
			return
		}
		if err := f(opt); err != nil {
			fmt.Fprintf(os.Stderr, "orion-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("walkthrough", walkthrough)
	run("5", figure5)
	run("6", figure6)
	run("7", figure7)
	run("ablations", ablations)
	fmt.Printf("\n(total %v)\n", time.Since(start).Round(time.Millisecond))
}

// ablations regenerates the design-choice comparisons of EXPERIMENTS.md:
// deadlock avoidance, pipeline speculation, routing tie-break, crossbar
// implementation, activity tracking and link DVS.
func ablations(opt orion.ExperimentOptions) error {
	fmt.Println("\n== Ablations (VC16 on-chip unless noted) ==")
	at := func(rate float64, mutate func(*orion.Config)) (*orion.Result, error) {
		cfg := orion.OnChip4x4(orion.VC16(), rate)
		opt.Apply(&cfg)
		if mutate != nil {
			mutate(&cfg)
		}
		return orion.Run(cfg)
	}

	fmt.Println("-- deadlock avoidance / pipeline / ties: latency at 0.14 --")
	for _, c := range []struct {
		name   string
		mutate func(*orion.Config)
	}{
		{"bubble (default)", nil},
		{"dateline VCs", func(c *orion.Config) { c.Sim.Deadlock = orion.DeadlockDateline }},
		{"speculative pipeline", func(c *orion.Config) { c.Router.Speculative = true }},
		{"balanced tie routing", func(c *orion.Config) { c.BalancedTieRouting = true }},
	} {
		res, err := at(0.14, c.mutate)
		if err != nil {
			fmt.Printf("   %-22s FAILED (%v)\n", c.name, err)
			continue
		}
		fmt.Printf("   %-22s latency %7.1f cycles, power %6.2f W\n", c.name, res.AvgLatency, res.TotalPowerW)
	}

	fmt.Println("-- power models: total power at 0.08 --")
	for _, c := range []struct {
		name   string
		mutate func(*orion.Config)
	}{
		{"matrix crossbar (default)", nil},
		{"mux-tree crossbar", func(c *orion.Config) { c.Sim.MuxTreeCrossbar = true }},
		{"fixed α=0.5 activity", func(c *orion.Config) { c.Sim.FixedActivity = true }},
		{"round-robin arbiters", func(c *orion.Config) { c.Sim.Arbiter = orion.RoundRobinArbiter }},
		{"with leakage", func(c *orion.Config) { c.Sim.IncludeLeakage = true }},
	} {
		res, err := at(0.08, c.mutate)
		if err != nil {
			fmt.Printf("   %-26s FAILED (%v)\n", c.name, err)
			continue
		}
		extra := ""
		if res.StaticPowerW > 0 {
			extra = fmt.Sprintf(" (static %.4g W)", res.StaticPowerW)
		}
		fmt.Printf("   %-26s %7.3f W%s\n", c.name, res.TotalPowerW, extra)
	}

	fmt.Println("-- link DVS: link power and latency at 0.02 and 0.10 --")
	for _, rate := range []float64{0.02, 0.10} {
		plain, err := at(rate, nil)
		if err != nil {
			return err
		}
		dvs, err := at(rate, func(c *orion.Config) { c.Link.DVS = &orion.DVSPolicy{} })
		if err != nil {
			return err
		}
		fmt.Printf("   rate %.2f: link %6.3f W -> %6.3f W (%.0f%% saving), latency %+.1f cycles\n",
			rate, plain.Breakdown.LinkW, dvs.Breakdown.LinkW,
			100*(1-dvs.Breakdown.LinkW/plain.Breakdown.LinkW),
			dvs.AvgLatency-plain.AvgLatency)
	}
	return nil
}

func walkthrough(orion.ExperimentOptions) error {
	rep, err := orion.Walkthrough()
	if err != nil {
		return err
	}
	fmt.Println("== Section 3.3 walkthrough: E_flit through a 5-port wormhole router ==")
	fmt.Println("   (4-flit buffers, 32-bit flits, 5x5 crossbar, 4:1 matrix arbiter, 3mm link)")
	earb := rep.ArbiterGrantJ + rep.ArbiterRequestAvgJ + rep.CrossbarCtrlJ
	fmt.Printf("   E_wrt  = %8.3f pJ (buffer write)\n", rep.BufferWriteAvgJ*1e12)
	fmt.Printf("   E_arb  = %8.3f pJ (arbitration incl. crossbar control)\n", earb*1e12)
	fmt.Printf("   E_read = %8.3f pJ (buffer read)\n", rep.BufferReadJ*1e12)
	fmt.Printf("   E_xb   = %8.3f pJ (crossbar traversal)\n", rep.CrossbarTraversalAvgJ*1e12)
	fmt.Printf("   E_link = %8.3f pJ (link traversal)\n", rep.LinkTraversalAvgJ*1e12)
	fmt.Printf("   E_flit = %8.3f pJ\n", rep.FlitEnergyJ*1e12)
	return nil
}

func printCurves(curves []orion.ConfigCurve, what string) {
	fmt.Printf("   %-6s", "rate:")
	for _, pt := range curves[0].Points {
		fmt.Printf(" %7.2f", pt.Rate)
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("   %-6s", c.Label)
		for _, pt := range c.Points {
			if pt.Failed {
				fmt.Printf(" %7s", "--")
				continue
			}
			switch what {
			case "latency":
				fmt.Printf(" %7.1f", pt.Latency)
			case "power":
				fmt.Printf(" %7.2f", pt.PowerW)
			case "throughput":
				fmt.Printf(" %7.3f", pt.Throughput)
			}
		}
		if what == "latency" {
			if c.Saturated {
				fmt.Printf("   (zero-load %.1f, saturation %.2f)", c.ZeroLoad, c.SaturationRate)
			} else {
				fmt.Printf("   (zero-load %.1f, no saturation in range)", c.ZeroLoad)
			}
		}
		fmt.Println()
	}
}

func printBreakdown(label string, res *orion.Result) {
	b := res.Breakdown
	t := res.TotalPowerW
	fmt.Printf("   %-5s total %8.3f W | buffer %5.1f%%  crossbar %5.1f%%  arbiter %5.2f%%  link %5.1f%%  central-buffer %5.1f%%\n",
		label, t, 100*b.BufferW/t, 100*b.CrossbarW/t, 100*b.ArbiterW/t, 100*b.LinkW/t, 100*b.CentralBufferW/t)
}

func figure5(opt orion.ExperimentOptions) error {
	fmt.Println("\n== Figure 5: on-chip 4x4 torus, 256-bit flits, 2 GHz, uniform random ==")
	curves, err := orion.Figure5(opt, nil)
	if err != nil {
		return err
	}
	fmt.Println("-- 5(a) average packet latency (cycles) --")
	printCurves(curves, "latency")
	fmt.Println("-- 5(b) total network power (W) --")
	printCurves(curves, "power")

	fmt.Println("-- 5(c) VC64 average power breakdown at rate 0.10 --")
	res, err := orion.Figure5Breakdown(opt, 0.10)
	if err != nil {
		return err
	}
	printBreakdown("VC64", res)
	return nil
}

func figure6(opt orion.ExperimentOptions) error {
	fmt.Println("\n== Figure 6: power spatial distribution, VC16 on-chip 4x4 torus ==")
	uniform, broadcast, err := orion.Figure6(opt)
	if err != nil {
		return err
	}
	fmt.Println("-- 6(a) uniform random, total 0.2 pkt/cycle (W per node, (0,0) bottom-left) --")
	m, err := orion.HeatmapString(uniform, 4, 4)
	if err != nil {
		return err
	}
	fmt.Print(indent(m))
	fmt.Println("-- 6(b) broadcast from node (1,2) at 0.2 pkt/cycle --")
	m, err = orion.HeatmapString(broadcast, 4, 4)
	if err != nil {
		return err
	}
	fmt.Print(indent(m))
	return nil
}

func figure7(opt orion.ExperimentOptions) error {
	fmt.Println("\n== Figure 7: chip-to-chip 4x4 torus, 32-bit flits, 1 GHz, 3 W links ==")
	for _, bc := range []bool{false, true} {
		curves, err := orion.Figure7(opt, nil, bc)
		if err != nil {
			return err
		}
		name := "uniform random (7a/7b)"
		if bc {
			name = "broadcast from (1,2) (7d/7e)"
		}
		fmt.Printf("-- latency (cycles), %s --\n", name)
		printCurves(curves, "latency")
		fmt.Printf("-- total network power (W), %s --\n", name)
		printCurves(curves, "power")
	}

	fmt.Println("-- 7(c)/7(f) component breakdowns at rate 0.06, uniform random --")
	xb, cb, err := orion.Figure7Breakdowns(opt, 0.06)
	if err != nil {
		return err
	}
	printBreakdown("XB", xb)
	printBreakdown("CB", cb)
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "   " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
