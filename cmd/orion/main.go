// Command orion runs one interconnection-network power-performance
// simulation and prints latency, throughput, total power, the per-component
// power breakdown, and the per-node power map.
//
// Examples:
//
//	# The paper's VC64 on-chip configuration at 10% injection:
//	orion -router vc -vcs 8 -depth 8 -flits 256 -rate 0.10
//
//	# Wormhole router with 64-flit buffers (WH64):
//	orion -router wormhole -depth 64 -flits 256 -rate 0.08
//
//	# Chip-to-chip central-buffered router (Section 4.4):
//	orion -router cb -depth 64 -flits 32 -freq 1 -chip2chip -rate 0.06 \
//	      -cb-banks 4 -cb-rows 2560
//
//	# Broadcast workload from node (1,2):
//	orion -router vc -vcs 2 -depth 8 -flits 256 -pattern broadcast \
//	      -source 9 -rate 0.2
//
//	# Replay a communication trace:
//	orion -router vc -vcs 2 -depth 8 -flits 64 -trace workload.txt
//
//	# Long run with periodic crash-safe snapshots, resumable after a kill:
//	orion -rate 0.1 -snapshot run.orsn -snapshot-every 5000
//	orion -rate 0.1 -snapshot run.orsn -resume
//
// SIGINT/SIGTERM stop the simulation, write a final snapshot when
// -snapshot is set, and exit with status 128+signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"orion"
)

var (
	width    = flag.Int("width", 4, "network width")
	zdim     = flag.Int("z", 0, "third dimension radix (k-ary 3-cube; torus only)")
	height   = flag.Int("height", 4, "network height")
	mesh     = flag.Bool("mesh", false, "mesh instead of torus")
	topoSpec = flag.String("topology", "",
		"topology spec overriding -width/-height/-z/-mesh: torusWxH, torusWxHxD, meshWxH (e.g. mesh32x32), cmeshWxHxC")

	routerKind = flag.String("router", "vc", "router kind: vc, wormhole, cb")
	vcs        = flag.Int("vcs", 2, "virtual channels per port (vc router)")
	depth      = flag.Int("depth", 8, "input buffer depth in flits (per VC for vc routers)")
	flits      = flag.Int("flits", 256, "flit width in bits")
	cbBanks    = flag.Int("cb-banks", 4, "central buffer banks (cb router)")
	cbRows     = flag.Int("cb-rows", 2560, "central buffer rows per bank (cb router)")
	cbRead     = flag.Int("cb-read", 2, "central buffer read ports (cb router)")
	cbWrite    = flag.Int("cb-write", 2, "central buffer write ports (cb router)")

	chip2chip = flag.Bool("chip2chip", false, "chip-to-chip links with constant power")
	linkMm    = flag.Float64("link-mm", 3, "on-chip link length in mm")
	linkWatts = flag.Float64("link-watts", 3, "chip-to-chip link power in W")

	freqGHz = flag.Float64("freq", 2, "clock frequency in GHz")
	vdd     = flag.Float64("vdd", 0, "supply voltage override in V (0 = process default)")
	feature = flag.Float64("feature", 0, "feature size in µm (0 = 0.1)")

	pattern  = flag.String("pattern", "uniform", "traffic: uniform, broadcast, transpose, bitcomp, tornado, hotspot, neighbor")
	source   = flag.Int("source", 0, "broadcast source / hotspot node")
	fraction = flag.Float64("fraction", 0.2, "hotspot traffic fraction")
	rate     = flag.Float64("rate", 0.1, "injection rate in packets/cycle/node")
	pktLen   = flag.Int("packet", 5, "packet length in flits")
	seed     = flag.Int64("seed", 1, "workload seed")
	tracePth = flag.String("trace", "", "replay a trace file (cycle src dst per line) instead of a pattern")

	samples = flag.Int("samples", 10000, "measured sample packets")
	warmup  = flag.Int64("warmup", 1000, "warm-up cycles")
	workers = flag.Int("workers", 0,
		"parallel tick workers (0 = ORION_WORKERS env or all cores; capped at half the node count; results are identical at any count)")

	showMap  = flag.Bool("map", true, "print the per-node power map")
	deadlock = flag.String("deadlock", "bubble", "torus deadlock avoidance: bubble, dateline, none")

	configPath = flag.String("config", "", "load the full configuration from a JSON file (other flags ignored)")
	dumpConfig = flag.Bool("dump-config", false, "print the effective configuration as JSON and exit")
	profileWin = flag.Int64("profile", 0, "sample power every N cycles and print the power-vs-time trace")

	faultSpec = flag.String("faults", "",
		"inject faults: comma-separated kind:node:port[:start[:duration[:rate]]] "+
			"(kinds: link-stall, link-drop, port-stall, bit-flip)")
	faultLinks = flag.Int("fault-links", 0, "inject N random link faults of -fault-kind instead of -faults")
	faultKind  = flag.String("fault-kind", "link-stall", "random link fault kind: link-stall, link-drop, bit-flip")
	faultSeed  = flag.Int64("fault-seed", 1, "fault schedule seed (drives link picks and bit-flip draws)")
	faultStart = flag.Int64("fault-start", 0, "first faulty cycle")
	faultDur   = flag.Int64("fault-duration", 0, "fault window in cycles (0 = permanent)")
	faultRate  = flag.Float64("fault-rate", 0.01, "per-flit corruption probability of bit-flip faults")
	invariants = flag.String("invariants", "auto", "runtime invariant checker: auto, on, off")

	snapPath   = flag.String("snapshot", "", "periodic checksummed state snapshot file (atomic rewrite; resume with -resume)")
	snapEvery  = flag.Int64("snapshot-every", 10000, "cycles between periodic snapshots (with -snapshot)")
	resumeSnap = flag.Bool("resume", false, "resume from the -snapshot file via verified deterministic replay")
	selfCheck  = flag.Int64("selfcheck", 0,
		"divergence self-check: run the fast and reference event paths in lockstep, comparing state hashes every N cycles, then exit")
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "orion: "+format+"\n", args...)
	os.Exit(1)
}

func buildConfig() orion.Config {
	cfg := orion.Config{
		Width: *width, Height: *height, Depth: *zdim, Mesh: *mesh,
		Router: orion.RouterConfig{
			VCs:         *vcs,
			BufferDepth: *depth,
			FlitBits:    *flits,
		},
		Tech: orion.TechConfig{FreqGHz: *freqGHz, Vdd: *vdd, FeatureUm: *feature},
		Traffic: orion.TrafficConfig{
			Rate:         *rate,
			PacketLength: *pktLen,
			Seed:         *seed,
		},
		Sim: orion.SimConfig{SamplePackets: *samples, WarmupCycles: *warmup},
	}
	if *topoSpec != "" {
		spec, err := orion.ParseTopologySpec(*topoSpec)
		if err != nil {
			fail("%v", err)
		}
		spec.Apply(&cfg)
	}

	switch *routerKind {
	case "vc", "virtual-channel":
		cfg.Router.Kind = orion.VirtualChannel
	case "wormhole", "wh":
		cfg.Router.Kind = orion.Wormhole
	case "cb", "central-buffered":
		cfg.Router.Kind = orion.CentralBuffered
		cfg.Router.CentralBuffer = orion.CentralBufferConfig{
			Banks: *cbBanks, Rows: *cbRows, ReadPorts: *cbRead, WritePorts: *cbWrite,
		}
	default:
		fail("unknown router kind %q", *routerKind)
	}

	if *chip2chip {
		cfg.Link = orion.LinkConfig{ChipToChip: true, ConstantWatts: *linkWatts}
	} else {
		cfg.Link = orion.LinkConfig{LengthMm: *linkMm}
	}

	switch *pattern {
	case "uniform":
		cfg.Traffic.Pattern = orion.Uniform()
	case "broadcast":
		cfg.Traffic.Pattern = orion.BroadcastFrom(*source)
	case "transpose":
		cfg.Traffic.Pattern = orion.Pattern{Kind: orion.PatternTranspose}
	case "bitcomp":
		cfg.Traffic.Pattern = orion.Pattern{Kind: orion.PatternBitComplement}
	case "tornado":
		cfg.Traffic.Pattern = orion.Pattern{Kind: orion.PatternTornado}
	case "hotspot":
		cfg.Traffic.Pattern = orion.Pattern{Kind: orion.PatternHotspot, Source: *source, Fraction: *fraction}
	case "neighbor":
		cfg.Traffic.Pattern = orion.Pattern{Kind: orion.PatternNeighbor}
	default:
		fail("unknown pattern %q", *pattern)
	}

	switch *deadlock {
	case "bubble":
		cfg.Sim.Deadlock = orion.DeadlockBubble
	case "dateline":
		cfg.Sim.Deadlock = orion.DeadlockDateline
	case "none":
		cfg.Sim.Deadlock = orion.DeadlockNone
	default:
		fail("unknown deadlock mode %q", *deadlock)
	}
	return cfg
}

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	var cfg orion.Config
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fail("%v", err)
		}
		cfg, err = orion.LoadConfigJSON(data)
		if err != nil {
			fail("%v", err)
		}
	} else {
		cfg = buildConfig()
	}
	if *profileWin > 0 {
		cfg.Sim.ProfileWindowCycles = *profileWin
	}
	if *workers != 0 {
		cfg.Sim.Workers = *workers
	}
	applyFaultFlags(&cfg)
	if *dumpConfig {
		data, err := orion.ConfigJSON(cfg)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(data))
		return 0
	}
	if *tracePth != "" && (*snapPath != "" || *resumeSnap) {
		fail("-snapshot/-resume do not apply to trace replay")
	}

	// SIGINT/SIGTERM cancel the run; a final snapshot is written when
	// -snapshot is set, and the process exits 128+signal.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	caught := make(chan os.Signal, 1)
	go func() {
		s, ok := <-sigCh
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "orion: %v: stopping\n", s)
		caught <- s
		cancel()
	}()

	if *selfCheck > 0 {
		if err := orion.VerifyEventPath(ctx, cfg, *selfCheck, 0); err != nil {
			fail("self-check: %v", err)
		}
		fmt.Printf("self-check passed: fast and reference event paths agree (state hash compared every %d cycles)\n", *selfCheck)
		return 0
	}

	var (
		res *orion.Result
		sm  *orion.Sim
		err error
	)
	switch {
	case *tracePth != "":
		f, ferr := os.Open(*tracePth)
		if ferr != nil {
			fail("%v", ferr)
		}
		defer f.Close()
		res, err = orion.RunTrace(cfg, f)
	case *snapPath != "":
		if *resumeSnap {
			sm, err = orion.ResumeFile(ctx, cfg, *snapPath)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("resumed from %s at cycle %d (replay verified)\n", *snapPath, sm.Cycle())
		} else {
			sm, err = orion.NewSim(cfg)
			if err != nil {
				fail("%v", err)
			}
		}
		sm.SetSnapshotFile(*snapPath, *snapEvery)
		res, err = sm.RunContext(ctx)
	default:
		res, err = orion.RunContext(ctx, cfg)
	}
	if err != nil {
		select {
		case s := <-caught:
			if errors.Is(err, context.Canceled) && sm != nil {
				if serr := sm.SaveSnapshot(*snapPath); serr != nil {
					fmt.Fprintf(os.Stderr, "orion: final snapshot: %v\n", serr)
				} else {
					fmt.Fprintf(os.Stderr, "orion: interrupted at cycle %d; snapshot written to %s (resume with -resume)\n",
						sm.Cycle(), *snapPath)
				}
			}
			if ss, ok := s.(syscall.Signal); ok {
				return 128 + int(ss)
			}
			return 1
		default:
		}
		fail("%v", err)
	}

	shape := fmt.Sprintf("%dx%d", cfg.Width, cfg.Height)
	if cfg.Depth > 1 {
		shape = fmt.Sprintf("%sx%d", shape, cfg.Depth)
	}
	if cfg.Concentration > 1 {
		shape = fmt.Sprintf("%sx%d", shape, cfg.Concentration)
	}
	fmt.Printf("network:        %s %s, %s router, %d-bit flits\n",
		shape, topoName(cfg), cfg.Router.Kind, cfg.Router.FlitBits)
	fmt.Printf("sample:         %d packets over %d measured cycles (%d total)\n",
		res.SamplePackets, res.MeasuredCycles, res.TotalCycles)
	fmt.Printf("latency:        avg %.2f cycles (min %.0f, max %.0f)\n",
		res.AvgLatency, res.MinLatency, res.MaxLatency)
	fmt.Printf("throughput:     %.4f flits/node/cycle (%.4f packets/node/cycle)\n",
		res.AcceptedFlitsPerNodeCycle, res.AcceptedPacketsPerNodeCycle)
	fmt.Printf("energy:         %.4g J over the measurement window\n", res.EnergyJ)
	fmt.Printf("total power:    %.4g W\n", res.TotalPowerW)
	b := res.Breakdown
	fmt.Printf("breakdown:      buffer %.4g W | crossbar %.4g W | arbiter %.4g W | link %.4g W | central buffer %.4g W\n",
		b.BufferW, b.CrossbarW, b.ArbiterW, b.LinkW, b.CentralBufferW)
	if res.StaticPowerW > 0 {
		fmt.Printf("leakage:        %.4g W static (included in totals)\n", res.StaticPowerW)
	}
	ev := res.Events
	fmt.Printf("events:         %d buf writes, %d buf reads, %d arbitrations, %d VC allocs, %d xbar traversals, %d link traversals, %d/%d CB writes/reads\n",
		ev.BufferWrites, ev.BufferReads, ev.Arbitrations, ev.VCAllocations,
		ev.CrossbarTraversals, ev.LinkTraversals, ev.CentralBufferWrites, ev.CentralBufferReads)
	if cfg.Faults != nil {
		fs := res.Faults
		fmt.Printf("faults:         %d packets (%d flits) dropped, %d sample packets lost, %d flits corrupted (%d bits), %d link-stall and %d port-stall blocked cycles\n",
			fs.DroppedPackets, fs.DroppedFlits, res.DroppedSamplePackets,
			fs.FlippedFlits, fs.FlippedBits, fs.StalledLinkCycles, fs.StalledPortCycles)
	}
	if *showMap {
		m, err := orion.HeatmapString(res, cfg.Width, cfg.Height)
		if err == nil {
			fmt.Println("per-node power (W), (0,0) bottom-left:")
			fmt.Print(m)
		}
	}
	if len(res.PowerProfileW) > 0 {
		fmt.Printf("power profile (W per %d-cycle window):\n", *profileWin)
		for i, w := range res.PowerProfileW {
			fmt.Printf("  %8d  %.4g\n", int64(i)*(*profileWin), w)
		}
	}
	return 0
}

func topoName(cfg orion.Config) string {
	switch {
	case cfg.Concentration > 1:
		return "cmesh"
	case cfg.Mesh:
		return "mesh"
	default:
		return "torus"
	}
}

// applyFaultFlags translates the fault and invariant flags onto the
// configuration (after -config loading, so flags refine a config file).
func applyFaultFlags(cfg *orion.Config) {
	switch *invariants {
	case "auto":
		cfg.CheckInvariants = orion.InvariantAuto
	case "on":
		cfg.CheckInvariants = orion.InvariantOn
	case "off":
		cfg.CheckInvariants = orion.InvariantOff
	default:
		fail("unknown invariant mode %q (want auto, on or off)", *invariants)
	}

	var faults []orion.Fault
	if *faultSpec != "" {
		fs, err := orion.ParseFaultSpec(*faultSpec)
		if err != nil {
			fail("%v", err)
		}
		faults = append(faults, fs...)
	}
	if *faultLinks > 0 {
		var kind orion.FaultKind
		switch *faultKind {
		case "link-stall":
			kind = orion.FaultLinkStall
		case "link-drop":
			kind = orion.FaultLinkDrop
		case "bit-flip", "bitflip":
			kind = orion.FaultBitFlip
		default:
			fail("unknown fault kind %q (want link-stall, link-drop or bit-flip)", *faultKind)
		}
		rate := 0.0
		if kind == orion.FaultBitFlip {
			rate = *faultRate
		}
		fs, err := orion.RandomLinkFaults(*cfg, *faultSeed, *faultLinks, kind, *faultStart, *faultDur, rate)
		if err != nil {
			fail("%v", err)
		}
		faults = append(faults, fs...)
	}
	if len(faults) > 0 {
		cfg.Faults = &orion.FaultsConfig{Seed: *faultSeed, Faults: faults}
	}
}
