// Command orion-sweep sweeps injection rates for one router configuration
// and prints the latency/power/throughput curve plus the saturation
// throughput (the paper's definition: the rate at which latency exceeds
// twice the zero-load latency, Section 4.1). Rate points run concurrently.
//
// Examples:
//
//	# Latency/power curve for the paper's VC64 on-chip router:
//	orion-sweep -preset vc64
//
//	# Custom sweep:
//	orion-sweep -router wormhole -depth 64 -flits 256 \
//	            -rates 0.02,0.06,0.10,0.14,0.18
//
//	# Crash-safe sweep: journal each completed point, resume after a kill:
//	orion-sweep -preset vc64 -journal sweep.jsonl -resume -csv curve.csv
//
//	# Distributed sweep: 4 worker processes share one work-queue journal;
//	# killed workers lose their leases and survivors re-run their points:
//	orion-sweep -preset vc64 -distributed 4 -journal sweep.wal -csv curve.csv
//
//	# Extra workers may join the same queue from other machines on a
//	# shared filesystem (same config flags, same rates):
//	orion-sweep -preset vc64 -worker -journal sweep.wal
//
//	# Inspect a crashed or in-flight sweep:
//	orion-sweep -status -journal sweep.wal
//
//	# Remote backends: dispatch the points to orion-serve instances over
//	# HTTP (circuit breakers, retries, local fallback when all are down):
//	orion-sweep -preset vc64 -backends http://hostb:9090,http://hostc:9090 -csv curve.csv
//
// SIGINT/SIGTERM cancel the in-flight points, flush the journal and
// partial results (table and CSV), and exit with status 128+signal.
// A journaled sweep restarted with -resume skips every point the journal
// already records as completed.
//
// Exit status: 0 success; 1 errors; 128+signal when interrupted. With
// -status: 0 healthy, 3 when any journal point failed, 4 when any
// worker lease has expired (and no point failed).
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"orion"
	"orion/internal/prof"
	"orion/internal/remote"
)

var (
	preset  = flag.String("preset", "", "paper configuration: wh64, vc16, vc64, vc128, xb, cb")
	ratesIn = flag.String("rates", "0.02,0.04,0.06,0.08,0.10,0.12,0.14,0.16,0.18,0.20",
		"comma-separated injection rates")
	samples = flag.Int("samples", 5000, "sample packets per point")
	seed    = flag.Int64("seed", 1, "workload seed")

	topoSpec = flag.String("topology", "",
		"topology spec overriding the preset's or default 4x4 shape: torusWxH, torusWxHxD, meshWxH (e.g. mesh32x32), cmeshWxHxC")

	routerKind = flag.String("router", "vc", "router kind when no preset: vc, wormhole, cb")
	vcs        = flag.Int("vcs", 2, "virtual channels per port")
	depth      = flag.Int("depth", 8, "buffer depth in flits")
	flits      = flag.Int("flits", 256, "flit width in bits")
	chip2chip  = flag.Bool("chip2chip", false, "chip-to-chip links (3 W each)")
	csvOut     = flag.String("csv", "", "also write the curve to a CSV file for plotting")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file")

	faultSpec = flag.String("faults", "",
		"inject faults: comma-separated kind:node:port[:start[:duration[:rate]]] "+
			"(kinds: link-stall, link-drop, port-stall, bit-flip)")
	faultLinks = flag.Int("fault-links", 0, "inject N random link-drop faults (degraded-network curve)")
	faultSeed  = flag.Int64("fault-seed", 1, "fault schedule seed")
	invariants = flag.String("invariants", "auto", "runtime invariant checker: auto, on, off")
	pointTmo   = flag.Duration("point-timeout", 0, "per-point wall-clock deadline (0 = none), e.g. 30s")

	journalPath = flag.String("journal", "", "write-ahead results journal (JSON lines), fsynced per completed point")
	resumeJrnl  = flag.Bool("resume", false, "resume from an existing -journal, skipping completed points")
	retries     = flag.Int("retries", 1, "retries per transiently-failed point (journaled sweeps; panic or point timeout only)")
	workers     = flag.Int("workers", 0,
		"parallel tick workers per point (0 = 1: the sweep already runs points on all cores; results are identical at any count)")

	distributed = flag.Int("distributed", 0,
		"run N worker subprocesses against the shared -journal work queue and merge their results")
	workerMode = flag.Bool("worker", false,
		"join the -journal work queue as one worker (spawned by -distributed, or by hand on a shared filesystem)")
	statusMode = flag.Bool("status", false,
		"print per-point state of the -journal sweep (done/failed/claimed/pending) and exit")
	leaseDur = flag.Duration("lease", 5*time.Second,
		"work-queue claim lease: a worker silent this long is presumed dead and its points are stolen")

	backendsIn = flag.String("backends", "",
		"comma-separated orion-serve base URLs (http://host:port); sweep points are dispatched to these backends over HTTP, with circuit breakers and local fallback")
	noLocalFallback = flag.Bool("no-local-fallback", false,
		"with -backends: fail a point (typed backend-down error) when every backend is unreachable, instead of running it locally")
	backendRetries = flag.Int("backend-retries", 3,
		"with -backends: HTTP dispatch attempts per point before degrading to local execution")
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "orion-sweep: "+format+"\n", args...)
	os.Exit(1)
}

func presetConfig(name string) (orion.Config, bool) {
	switch name {
	case "wh64":
		return orion.OnChip4x4(orion.WH64(), 0), true
	case "vc16":
		return orion.OnChip4x4(orion.VC16(), 0), true
	case "vc64":
		return orion.OnChip4x4(orion.VC64(), 0), true
	case "vc128":
		return orion.OnChip4x4(orion.VC128(), 0), true
	case "xb":
		return orion.ChipToChip4x4(orion.XB(), 0), true
	case "cb":
		return orion.ChipToChip4x4(orion.CB(), 0), true
	}
	return orion.Config{}, false
}

func main() {
	os.Exit(run())
}

// run is main's body, returning the process exit status so deferred
// cleanup (profile flush, journal close) still happens before os.Exit.
// Interrupted sweeps exit 128+signal after flushing partial results;
// -status exits 3 when the journal records failed points and 4 when it
// records expired leases (and no failures).
func run() (status int) {
	flag.Parse()
	// Validate numeric flags at parse time: a zero or negative lease
	// would make every claim instantly stealable and a negative worker
	// count or retry budget is meaningless — fail fast with the field
	// named, before any journal is touched or process spawned.
	if *leaseDur <= 0 {
		fail("-lease: must be positive, got %v", *leaseDur)
	}
	if *retries < 0 {
		fail("-retries: must not be negative, got %d", *retries)
	}
	if *workers < 0 {
		fail("-workers: must not be negative, got %d", *workers)
	}
	if *distributed < 0 {
		fail("-distributed: must not be negative, got %d", *distributed)
	}
	if *pointTmo < 0 {
		fail("-point-timeout: must not be negative, got %v", *pointTmo)
	}
	// The remote-dispatch flags are validated before any network or
	// journal activity: a typo in a backend URL fails with the list
	// position named, and the tuning flags are rejected when they cannot
	// mean anything (no -backends to tune).
	var backendURLs []string
	if *backendsIn != "" {
		var perr error
		backendURLs, perr = remote.ParseBackends(*backendsIn)
		if perr != nil {
			fail("-%v", perr)
		}
	}
	if *backendRetries <= 0 {
		fail("-backend-retries: must be positive, got %d", *backendRetries)
	}
	if *backendsIn == "" {
		explicitlySet := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicitlySet[f.Name] = true })
		if explicitlySet["no-local-fallback"] {
			fail("-no-local-fallback: requires -backends")
		}
		if explicitlySet["backend-retries"] {
			fail("-backend-retries: requires -backends")
		}
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "orion-sweep: %v\n", err)
			if status == 0 {
				status = 1
			}
		}
	}()

	var cfg orion.Config
	if *preset != "" {
		var ok bool
		cfg, ok = presetConfig(strings.ToLower(*preset))
		if !ok {
			fail("unknown preset %q", *preset)
		}
	} else {
		cfg = orion.Config{
			Width: 4, Height: 4,
			Router:  orion.RouterConfig{VCs: *vcs, BufferDepth: *depth, FlitBits: *flits},
			Traffic: orion.TrafficConfig{Pattern: orion.Uniform(), PacketLength: 5},
		}
		switch *routerKind {
		case "vc":
			cfg.Router.Kind = orion.VirtualChannel
		case "wormhole", "wh":
			cfg.Router.Kind = orion.Wormhole
		case "cb":
			cfg.Router.Kind = orion.CentralBuffered
			cfg.Router.CentralBuffer = orion.CentralBufferConfig{Banks: 4, Rows: 2560, ReadPorts: 2, WritePorts: 2}
		default:
			fail("unknown router kind %q", *routerKind)
		}
		if *chip2chip {
			cfg.Link = orion.LinkConfig{ChipToChip: true, ConstantWatts: 3}
			cfg.Tech = orion.TechConfig{FreqGHz: 1}
		} else {
			cfg.Link = orion.LinkConfig{LengthMm: 3}
			cfg.Tech = orion.TechConfig{FreqGHz: 2}
		}
	}
	if *topoSpec != "" {
		spec, err := orion.ParseTopologySpec(*topoSpec)
		if err != nil {
			fail("%v", err)
		}
		spec.Apply(&cfg)
	}
	cfg.Sim.SamplePackets = *samples
	cfg.Traffic.Seed = *seed
	cfg.Sim.PointTimeout = *pointTmo
	cfg.Sim.Workers = *workers
	switch *invariants {
	case "auto":
		cfg.CheckInvariants = orion.InvariantAuto
	case "on":
		cfg.CheckInvariants = orion.InvariantOn
	case "off":
		cfg.CheckInvariants = orion.InvariantOff
	default:
		fail("unknown invariant mode %q (want auto, on or off)", *invariants)
	}
	var faults []orion.Fault
	if *faultSpec != "" {
		fs, err := orion.ParseFaultSpec(*faultSpec)
		if err != nil {
			fail("%v", err)
		}
		faults = append(faults, fs...)
	}
	if *faultLinks > 0 {
		fs, err := orion.RandomLinkFaults(cfg, *faultSeed, *faultLinks, orion.FaultLinkDrop, 0, 0, 0)
		if err != nil {
			fail("%v", err)
		}
		faults = append(faults, fs...)
	}
	if len(faults) > 0 {
		cfg.Faults = &orion.FaultsConfig{Seed: *faultSeed, Faults: faults}
	}

	var rates []float64
	for _, tok := range strings.Split(*ratesIn, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fail("bad rate %q: %v", tok, err)
		}
		rates = append(rates, r)
	}

	if *workerMode && *distributed > 0 {
		fail("-worker and -distributed are mutually exclusive")
	}
	if (*workerMode || *distributed > 0 || *statusMode) && *journalPath == "" {
		fail("-worker, -distributed and -status require -journal")
	}
	if *statusMode {
		return printStatus(*journalPath)
	}

	// The backend pool, when -backends is set: points dispatch over HTTP
	// with per-try deadlines derived from the lease, circuit breakers,
	// and (unless opted out) local fallback. Workers and coordinators
	// share the same pool wiring.
	var pool *remote.Pool
	var runner orion.PointRunner
	if len(backendURLs) > 0 {
		var perr error
		pool, perr = remote.NewPool(remote.Options{
			Backends:        backendURLs,
			Lease:           *leaseDur,
			Retries:         *backendRetries,
			NoLocalFallback: *noLocalFallback,
		})
		if perr != nil {
			fail("%v", perr)
		}
		runner = pool.RunPoint
	}
	printPoolStats := func() {
		if pool == nil {
			return
		}
		st := pool.Stats()
		fmt.Fprintf(os.Stderr,
			"orion-sweep: backends: %d remote, %d local-fallback, %d attempts (%d busy, %d failed), %d breaker trips\n",
			st.Remote, st.Local, st.Attempts, st.Busy, st.Failures, st.Trips)
	}

	zl, err := orion.ZeroLoadLatency(cfg)
	if err != nil {
		fail("zero-load: %v", err)
	}
	if !*workerMode {
		fmt.Printf("zero-load latency: %.2f cycles\n", zl)
	}

	// SIGINT/SIGTERM cancel the sweep context; in-flight points abort,
	// the journal keeps every already-completed point, and the partial
	// table and CSV below still print before the 128+signal exit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	caught := make(chan os.Signal, 1)
	go func() {
		s, ok := <-sigCh
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "orion-sweep: %v: cancelling in-flight points, flushing partial results\n", s)
		caught <- s
		cancel()
	}()

	if *workerMode {
		// Worker mode is quiet: no table, no CSV — the coordinator (or
		// whoever merges the queue) owns the output. The worker claims,
		// heartbeats, runs and commits points until the queue is drained
		// or it is told to stop.
		cfg.Sim.PointRetries = *retries
		stats, werr := orion.SweepWorker(ctx, cfg, rates,
			orion.SweepWorkerOptions{Path: *journalPath, Lease: *leaseDur, Run: runner})
		fmt.Fprintf(os.Stderr, "orion-sweep: worker %d: %d claims (%d steals), %d commits, %d leases lost, %d backend-down\n",
			os.Getpid(), stats.Claims, stats.Steals, stats.Commits, stats.LeasesLost, stats.BackendDown)
		printPoolStats()
		if werr != nil && !errors.Is(werr, context.Canceled) {
			fail("worker: %v", werr)
		}
		select {
		case s := <-caught:
			if ss, ok := s.(syscall.Signal); ok {
				return 128 + int(ss)
			}
			return 1
		default:
		}
		return 0
	}

	var results []*orion.Result
	var sweepErr error
	switch {
	case *distributed > 0:
		cfg.Sim.PointRetries = *retries
		results, sweepErr = runCoordinator(ctx, cfg, rates)
		if results == nil && sweepErr != nil {
			fail("%v", sweepErr)
		}
	case pool != nil:
		// Remote dispatch always runs through the work-queue protocol so
		// the exactly-one-commit invariant holds end to end; without an
		// explicit -journal the queue lives in a throwaway file.
		cfg.Sim.PointRetries = *retries
		qpath := *journalPath
		if qpath == "" {
			qf, qerr := os.CreateTemp("", "orion-sweep-remote-*.wal")
			if qerr != nil {
				fail("creating remote dispatch queue: %v", qerr)
			}
			qpath = qf.Name()
			qf.Close()
			defer os.Remove(qpath)
		}
		// Dispatch concurrency: a couple of in-flight points per backend
		// keeps the fleet busy without flooding any single admission
		// queue.
		dw := 2 * len(backendURLs)
		if dw > len(rates) {
			dw = len(rates)
		}
		results, sweepErr = orion.SweepDistributed(ctx, cfg, rates, orion.DistributedSweepOptions{
			Path:    qpath,
			Workers: dw,
			Lease:   *leaseDur,
			Resume:  *resumeJrnl && *journalPath != "",
			Run:     runner,
		})
		printPoolStats()
	case *journalPath != "":
		cfg.Sim.PointRetries = *retries
		if *resumeJrnl {
			if n, jerr := orion.JournalPoints(*journalPath); jerr != nil {
				fail("%v", jerr)
			} else if n > 0 {
				fmt.Printf("journal: resuming %s, %d points already recorded\n", *journalPath, n)
			}
		}
		results, sweepErr = orion.SweepJournaledContext(ctx, cfg, rates,
			orion.SweepJournalOptions{Path: *journalPath, Resume: *resumeJrnl})
	default:
		results, sweepErr = orion.SweepContext(ctx, cfg, rates)
	}
	if results == nil && sweepErr != nil {
		fail("%v", sweepErr)
	}
	pointErrs := make(map[int]error)
	var serr *orion.SweepError
	if errors.As(sweepErr, &serr) {
		for j, r := range serr.Rates {
			for i, rate := range rates {
				if rate == r && results[i] == nil && pointErrs[i] == nil {
					pointErrs[i] = serr.Errs[j]
					break
				}
			}
		}
	}
	fmt.Printf("%8s %12s %14s %12s\n", "rate", "latency", "throughput", "power(W)")
	sat, satFound := 0.0, false
	for i, res := range results {
		if res == nil {
			fmt.Printf("%8.3f %12s %14s %12s  (%s)\n", rates[i], "--", "--", "--", classify(pointErrs[i]))
			// An over-saturated point that could not finish marks saturation;
			// other failures (timeout, deadlock, cancellation) say nothing
			// about the latency curve.
			if errors.Is(pointErrs[i], orion.ErrSaturated) && (!satFound || rates[i] < sat) {
				sat, satFound = rates[i], true
			}
			continue
		}
		fmt.Printf("%8.3f %12.2f %14.4f %12.4g\n",
			rates[i], res.AvgLatency, res.AcceptedFlitsPerNodeCycle, res.TotalPowerW)
		if res.AvgLatency > 2*zl && (!satFound || rates[i] < sat) {
			sat, satFound = rates[i], true
		}
	}
	if satFound {
		fmt.Printf("saturation throughput: %.3f packets/cycle/node (latency > 2x zero-load)\n", sat)
	} else {
		fmt.Println("saturation: not reached within the swept rates")
	}

	if *csvOut != "" {
		if err := writeCSV(*csvOut, rates, results); err != nil {
			fail("writing CSV: %v", err)
		}
		fmt.Printf("curve written to %s\n", *csvOut)
	}

	select {
	case s := <-caught:
		if ss, ok := s.(syscall.Signal); ok {
			return 128 + int(ss)
		}
		return 1
	default:
	}
	return 0
}

// runCoordinator is -distributed N: it initialises the shared work-queue
// journal, spawns N worker subprocesses of this same binary (argv with
// the coordinator-only flags stripped and -worker added), respawns
// crashed workers from a bounded budget, and merges the committed
// results once every point settles. A worker killed mid-point stops
// heartbeating; its lease expires and a survivor steals and re-runs the
// point, so the merged curve is byte-identical to a clean
// single-process sweep.
func runCoordinator(ctx context.Context, cfg orion.Config, rates []float64) ([]*orion.Result, error) {
	n := *distributed
	if *resumeJrnl {
		if st, err := orion.JournalStatus(*journalPath); err == nil && len(st) > 0 {
			settled := 0
			for _, p := range st {
				if p.State == "done" || p.State == "failed" {
					settled++
				}
			}
			fmt.Printf("journal: resuming %s, %d/%d points settled\n", *journalPath, settled, len(st))
		}
	}
	if err := orion.CreateSweepQueue(*journalPath, cfg, rates, *resumeJrnl); err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating worker binary: %w", err)
	}
	args := workerArgs(os.Args[1:])
	fmt.Printf("distributed: %d workers on %s\n", n, *journalPath)

	// wctx governs the worker fleet: cancelling it SIGTERMs the children
	// (they drop their claims and exit). waitCtx governs the merge wait:
	// the reaper cancels it if the fleet dies for good, so the
	// coordinator returns a partial merge instead of waiting forever.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	waitCtx, stopWait := context.WithCancel(ctx)
	defer stopWait()

	var mu sync.Mutex
	procs := make(map[int]*os.Process)
	live, budget := 0, 2*n+2
	exits := make(chan error, 4*n+4)
	spawn := func() error {
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		pid := cmd.Process.Pid
		mu.Lock()
		procs[pid] = cmd.Process
		live++
		budget--
		mu.Unlock()
		go func() {
			werr := cmd.Wait()
			mu.Lock()
			delete(procs, pid)
			live--
			mu.Unlock()
			exits <- werr
		}()
		return nil
	}
	for i := 0; i < n; i++ {
		if err := spawn(); err != nil {
			stopWorkers()
			return nil, fmt.Errorf("spawning worker: %w", err)
		}
	}
	go func() {
		<-wctx.Done()
		mu.Lock()
		for _, p := range procs {
			_ = p.Signal(syscall.SIGTERM)
		}
		mu.Unlock()
	}()
	// Reap worker exits. A crash (non-zero exit, coordinator not
	// cancelled) is logged and the worker replaced while the budget
	// lasts; the crashed worker's in-flight point comes back via lease
	// expiry. When the fleet is gone and cannot be rebuilt, stop the
	// merge wait — either the queue is already complete (clean exits) or
	// nothing is left to finish it.
	go func() {
		for {
			select {
			case <-waitCtx.Done():
				return
			case werr := <-exits:
				mu.Lock()
				l, b := live, budget
				mu.Unlock()
				if werr != nil && wctx.Err() == nil {
					if b > 0 {
						fmt.Fprintf(os.Stderr, "orion-sweep: worker died (%v); respawning (%d respawns left)\n", werr, b)
						if serr := spawn(); serr == nil {
							continue
						}
					} else {
						fmt.Fprintf(os.Stderr, "orion-sweep: worker died (%v); respawn budget exhausted\n", werr)
					}
				}
				if l == 0 {
					stopWait()
					return
				}
			}
		}
	}()

	results, sweepErr := orion.SweepQueueWait(waitCtx, cfg, rates, *journalPath, 0)
	// Workers notice completion themselves on their next queue scan; give
	// them a moment to exit cleanly before resorting to SIGTERM.
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		mu.Lock()
		l := live
		mu.Unlock()
		if l == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	stopWorkers()
	// Drain the fleet so no worker outlives the coordinator.
	for {
		mu.Lock()
		l := live
		mu.Unlock()
		if l == 0 {
			break
		}
		select {
		case <-exits:
		case <-time.After(5 * time.Second):
			mu.Lock()
			for _, p := range procs {
				_ = p.Kill()
			}
			mu.Unlock()
		}
	}
	if sweepErr != nil && errors.Is(sweepErr, context.Canceled) && ctx.Err() == nil {
		sweepErr = fmt.Errorf("worker fleet exited before completing the sweep: %w", sweepErr)
	}
	return results, sweepErr
}

// workerArgs strips the coordinator-only flags from argv and appends
// -worker, producing the command line for a worker subprocess: same
// configuration, rates, journal, lease and retries; no -distributed
// (workers do not recurse), no output or profile flags, and no -resume
// or -status (the coordinator already prepared the queue).
func workerArgs(argv []string) []string {
	valueFlags := map[string]bool{"distributed": true, "csv": true, "cpuprofile": true, "memprofile": true}
	boolFlags := map[string]bool{"resume": true, "status": true, "worker": true}
	var out []string
	for i := 0; i < len(argv); i++ {
		arg := argv[i]
		if len(arg) < 2 || arg[0] != '-' {
			out = append(out, arg)
			continue
		}
		name := strings.TrimLeft(arg, "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			if valueFlags[name[:eq]] || boolFlags[name[:eq]] {
				continue
			}
			out = append(out, arg)
			continue
		}
		if boolFlags[name] {
			continue
		}
		if valueFlags[name] {
			i++ // the flag's value is the next token; drop both
			continue
		}
		out = append(out, arg)
	}
	return append(out, "-worker")
}

// printStatus is -status: the per-point state of a sweep journal (either
// format), for inspecting a crashed or in-flight sweep. The exit status
// is machine-readable health: 0 when every point is done, pending or
// freshly claimed; 3 when any point failed; 4 when any claim's lease has
// expired (a worker presumed dead) and nothing failed — so scripts and
// monitors can branch on a sweep's health without parsing the table.
func printStatus(path string) int {
	pts, err := orion.JournalStatus(path)
	if err != nil {
		fail("%v", err)
	}
	if len(pts) == 0 {
		fmt.Printf("journal %s: empty or missing\n", path)
		return 0
	}
	fmt.Printf("%5s %8s %-8s %-24s %s\n", "point", "rate", "state", "worker", "detail")
	settled, failed, expired := 0, 0, 0
	for _, p := range pts {
		detail := ""
		switch {
		case p.State == "failed":
			detail = p.Err
			failed++
		case p.State == "claimed" && p.LeaseExpired:
			detail = "lease expired (stealable)"
			expired++
		}
		if p.State == "done" || p.State == "failed" {
			settled++
		}
		fmt.Printf("%5d %8.3f %-8s %-24s %s\n", p.Index, p.Rate, p.State, p.Worker, detail)
	}
	fmt.Printf("%d/%d points settled\n", settled, len(pts))
	switch {
	case failed > 0:
		fmt.Printf("unhealthy: %d failed point(s)\n", failed)
		return 3
	case expired > 0:
		fmt.Printf("unhealthy: %d expired lease(s)\n", expired)
		return 4
	}
	return 0
}

// classify renders a failed point's error as a short cause tag using the
// package's typed sentinels.
func classify(err error) string {
	var cause string
	switch {
	case err == nil:
		return "run aborted"
	case errors.Is(err, orion.ErrSaturated):
		cause = "over-saturated"
	case errors.Is(err, orion.ErrDeadlock):
		cause = "no progress"
	case errors.Is(err, orion.ErrInvariant):
		cause = "invariant violated"
	case errors.Is(err, context.DeadlineExceeded):
		cause = "point timeout"
	case errors.Is(err, context.Canceled):
		cause = "cancelled"
	default:
		cause = "failed"
	}
	if errors.Is(err, orion.ErrFaulted) {
		cause += ", fault-induced"
	}
	return cause
}

// writeCSV emits one row per rate point with the quantities of the paper's
// figure axes plus the component power split.
func writeCSV(path string, rates []float64, results []*orion.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	header := []string{"rate", "latency_cycles", "throughput_flits_node_cycle", "power_w",
		"buffer_w", "crossbar_w", "arbiter_w", "link_w", "central_buffer_w"}
	if err := w.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for i, res := range results {
		row := []string{ff(rates[i])}
		if res == nil {
			row = append(row, "", "", "", "", "", "", "", "")
		} else {
			b := res.Breakdown
			row = append(row, ff(res.AvgLatency), ff(res.AcceptedFlitsPerNodeCycle), ff(res.TotalPowerW),
				ff(b.BufferW), ff(b.CrossbarW), ff(b.ArbiterW), ff(b.LinkW), ff(b.CentralBufferW))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
