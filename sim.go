package orion

import (
	"context"
	"crypto/sha256"
	"fmt"

	"orion/internal/core"
	"orion/internal/snap"
)

// Snapshot is a versioned, checksummed record of a simulation's full
// cross-cycle state at a cycle boundary: engine cycle, per-router buffer
// and VC occupancy, in-flight flits, RNG streams, power accumulators,
// fault-schedule progress. See DESIGN.md for the format.
type Snapshot = snap.Snapshot

// Sim is an incrementally driveable simulation: the same measurement
// protocol as Run, but advanceable in segments, snapshottable, and
// resumable. A Sim is single-goroutine; it is not safe for concurrent
// use.
type Sim struct {
	cfg    Config
	net    *core.Network
	digest []byte
	// res caches the completed result so snapshots taken after
	// completion still see a finished run.
	res *Result
}

// NewSim builds a simulation from the configuration without running it.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ccfg, err := resolve(cfg)
	if err != nil {
		return nil, err
	}
	n, err := core.Build(ccfg)
	if err != nil {
		return nil, err
	}
	d, err := ConfigDigest(cfg)
	if err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, net: n, digest: d}, nil
}

// ConfigDigest returns the SHA-256 of the configuration's canonical JSON
// — the identity snapshots and sweep journals are bound to, so a snapshot
// can never be resumed under a different configuration unnoticed.
func ConfigDigest(cfg Config) ([]byte, error) {
	data, err := ConfigJSON(cfg)
	if err != nil {
		return nil, fmt.Errorf("orion: digesting config: %w", err)
	}
	sum := sha256.Sum256(data)
	return sum[:], nil
}

// Cycle returns the current engine cycle.
func (s *Sim) Cycle() int64 { return s.net.Cycle() }

// Workers returns the resolved parallel tick worker count (1 means the
// sequential engine). See SimConfig.Workers for the resolution policy.
func (s *Sim) Workers() int { return s.net.Workers() }

// StepTo advances the simulation to the given cycle boundary, crossing
// the warm-up/measurement transition exactly as an uninterrupted run
// would. done reports whether the measurement completed at or before the
// boundary; call RunContext afterwards to finish the run and collect the
// Result.
func (s *Sim) StepTo(ctx context.Context, cycle int64) (done bool, err error) {
	return s.net.StepTo(ctx, cycle)
}

// Run completes the simulation and returns its result.
func (s *Sim) Run() (*Result, error) { return s.RunContext(context.Background()) }

// RunContext completes the simulation (continuing from wherever StepTo
// left it) and returns its result.
func (s *Sim) RunContext(ctx context.Context) (*Result, error) {
	res, err := s.net.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	s.res = fromCore(res, s.cfg.Traffic.Rate)
	return s.res, nil
}

// Snapshot captures the simulation's state at the current cycle boundary.
func (s *Sim) Snapshot() (*Snapshot, error) {
	snapshot, err := s.net.CaptureState(s.digest)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return snapshot, nil
}

// SaveSnapshot captures the state and writes it atomically to path (temp
// file in the same directory, fsync, rename).
func (s *Sim) SaveSnapshot(path string) error {
	snapshot, err := s.Snapshot()
	if err != nil {
		return err
	}
	return snap.WriteFile(path, snapshot)
}

// SetSnapshotFile arranges for the simulation to write a snapshot to path
// every `every` cycles while it runs, each write atomic so a kill
// mid-write leaves the previous snapshot intact. every <= 0 disables
// periodic snapshotting (the default), in which case the run's hot path
// is unchanged — the disabled check is one integer compare per cycle and
// allocates nothing.
func (s *Sim) SetSnapshotFile(path string, every int64) {
	if path == "" || every <= 0 {
		s.net.SetSnapshotHook(0, nil)
		return
	}
	digest := s.digest
	s.net.SetSnapshotHook(every, func(n *core.Network) error {
		snapshot, err := n.CaptureState(digest)
		if err != nil {
			return err
		}
		return snap.WriteFile(path, snapshot)
	})
}

// StateHash returns the FNV-1a fingerprint of the simulation's captured
// state at the current cycle boundary. Two deterministic runs of the same
// configuration agree on StateHash at every cycle; a restored run
// round-trips the hash of the snapshot it was restored from.
func (s *Sim) StateHash() (uint64, error) {
	h, err := s.net.StateHash()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return h, nil
}

// LoadSnapshot decodes and validates snapshot bytes. Damaged input fails
// with an error wrapping ErrSnapshot and ErrSnapshotCorrupt; version skew
// wraps ErrSnapshot and ErrSnapshotVersion. It never panics.
func LoadSnapshot(data []byte) (*Snapshot, error) {
	s, err := snap.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	return s, nil
}

// LoadSnapshotFile reads and validates a snapshot file.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	s, err := snap.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	return s, nil
}

// Resume rebuilds a simulation from its configuration and a snapshot,
// returning a Sim positioned at the snapshot's cycle with state verified
// bit-identical to the snapshot.
//
// Restore is by verified deterministic replay: the network is rebuilt
// from the configuration and advanced to the snapshot cycle (the
// simulator's determinism contract makes this reproduce the original
// trajectory exactly), then the recaptured state is compared against the
// snapshot section by section. A mismatch — a changed configuration that
// slipped past the digest, or genuine non-determinism — fails with a
// *DivergenceError wrapping ErrDiverged naming the first differing
// section. A snapshot whose config digest does not match cfg fails
// immediately with an error wrapping ErrSnapshot.
func Resume(ctx context.Context, cfg Config, snapshot *Snapshot) (*Sim, error) {
	s, err := NewSim(cfg)
	if err != nil {
		return nil, err
	}
	if string(snapshot.ConfigDigest) != string(s.digest) {
		return nil, fmt.Errorf("%w: snapshot was taken under a different configuration (digest %x, want %x)",
			ErrSnapshot, snapshot.ConfigDigest, s.digest)
	}
	if _, err := s.StepTo(ctx, snapshot.Cycle); err != nil {
		return nil, err
	}
	if got := s.Cycle(); got != snapshot.Cycle {
		return nil, &DivergenceError{Cycle: got,
			Section: fmt.Sprintf("run ended at cycle %d before reaching snapshot cycle %d", got, snapshot.Cycle)}
	}
	replayed, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	if d := snap.Diff(snapshot, replayed); d != "" {
		return nil, &DivergenceError{Cycle: snapshot.Cycle, Section: d}
	}
	return s, nil
}

// ResumeFile is Resume reading the snapshot from a file.
func ResumeFile(ctx context.Context, cfg Config, path string) (*Sim, error) {
	snapshot, err := LoadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return Resume(ctx, cfg, snapshot)
}

// VerifyEventPath is the simulator's divergence self-check: it runs
// lockstep builds of the configuration — the frozen fast event path and
// the map-based reference path, plus a sequential-engine oracle whenever
// the primary build resolved to more than one tick worker, plus an
// always-tick oracle whenever the primary build uses the active-set
// scheduler — comparing StateHash every `every` cycles until all
// complete or `maxCycles` is reached. The builds are required to be observably identical; a
// differing hash fails with a *DivergenceError naming the first differing
// state section.
func VerifyEventPath(ctx context.Context, cfg Config, every, maxCycles int64) error {
	if every <= 0 {
		return fmt.Errorf("orion: VerifyEventPath needs a positive comparison interval, got %d", every)
	}
	fast, err := NewSim(cfg)
	if err != nil {
		return err
	}
	refCfg := cfg
	refCfg.Sim.ReferenceEventPath = true
	ref, err := NewSim(refCfg)
	if err != nil {
		return err
	}
	// When the primary build runs parallel, a third build pinned to the
	// sequential engine checks the parallel kernel's bit-identity claim
	// end to end, not just in the unit tests.
	var seq *Sim
	if fast.Workers() > 1 {
		seqCfg := cfg
		seqCfg.Sim.Workers = 1
		if seq, err = NewSim(seqCfg); err != nil {
			return err
		}
	}
	// An always-tick build checks the active-set scheduler's bit-identity
	// claim the same way, unless the caller already opted out of gating.
	var alt *Sim
	if !cfg.Sim.AlwaysTick {
		altCfg := cfg
		altCfg.Sim.AlwaysTick = true
		if alt, err = NewSim(altCfg); err != nil {
			return err
		}
	}
	for cycle := every; maxCycles <= 0 || cycle <= maxCycles; cycle += every {
		fastDone, err := fast.StepTo(ctx, cycle)
		if err != nil {
			return err
		}
		refDone, err := ref.StepTo(ctx, cycle)
		if err != nil {
			return err
		}
		a, err := fast.net.CaptureState(nil)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
		b, err := ref.net.CaptureState(nil)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
		if d := snap.Diff(a, b); d != "" {
			return &DivergenceError{Cycle: fast.Cycle(), Section: "fast vs reference event path: " + d}
		}
		if fastDone != refDone {
			return &DivergenceError{Cycle: fast.Cycle(), Section: "completion status (fast vs reference)"}
		}
		if seq != nil {
			seqDone, err := seq.StepTo(ctx, cycle)
			if err != nil {
				return err
			}
			c, err := seq.net.CaptureState(nil)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSnapshot, err)
			}
			if d := snap.Diff(a, c); d != "" {
				return &DivergenceError{Cycle: fast.Cycle(),
					Section: fmt.Sprintf("parallel (%d workers) vs sequential engine: %s", fast.Workers(), d)}
			}
			if fastDone != seqDone {
				return &DivergenceError{Cycle: fast.Cycle(), Section: "completion status (parallel vs sequential)"}
			}
		}
		if alt != nil {
			altDone, err := alt.StepTo(ctx, cycle)
			if err != nil {
				return err
			}
			c, err := alt.net.CaptureState(nil)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSnapshot, err)
			}
			if d := snap.Diff(a, c); d != "" {
				return &DivergenceError{Cycle: fast.Cycle(), Section: "activity-gated vs always-tick scheduler: " + d}
			}
			if fastDone != altDone {
				return &DivergenceError{Cycle: fast.Cycle(), Section: "completion status (gated vs always-tick)"}
			}
		}
		if fastDone {
			return nil
		}
	}
	return nil
}
