package orion

import (
	"context"
	"testing"
	"time"
)

// TestPointBackoffDelaySchedule pins the retry schedule: the delay grows
// linearly with the attempt number on a per-rate jitter base bounded to
// [50ms, 149ms], so attempt k always waits exactly k× attempt 1.
func TestPointBackoffDelaySchedule(t *testing.T) {
	for _, rate := range []float64{0, 0.01, 0.02, 0.5, 0.999} {
		base := pointBackoffDelay(1, rate)
		if base < 50*time.Millisecond || base > 149*time.Millisecond {
			t.Errorf("rate %g: base delay %v outside [50ms, 149ms]", rate, base)
		}
		for attempt := 2; attempt <= 5; attempt++ {
			got := pointBackoffDelay(attempt, rate)
			if want := time.Duration(attempt) * base; got != want {
				t.Errorf("rate %g attempt %d: delay %v, want %d x base = %v",
					rate, attempt, got, attempt, want)
			}
		}
	}
}

// TestPointBackoffDelayDeterministicJitter: the jitter derives from the
// rate's bit pattern alone, so a fixed (attempt, rate) pair always backs
// off identically — resumed and repeated sweeps stay reproducible —
// while distinct rates decorrelate across a failing pool.
func TestPointBackoffDelayDeterministicJitter(t *testing.T) {
	for _, rate := range []float64{0.02, 0.05, 0.11} {
		first := pointBackoffDelay(3, rate)
		for i := 0; i < 10; i++ {
			if got := pointBackoffDelay(3, rate); got != first {
				t.Fatalf("rate %g: delay changed across calls: %v then %v", rate, first, got)
			}
		}
	}
	distinct := map[time.Duration]bool{}
	for _, rate := range []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08} {
		distinct[pointBackoffDelay(1, rate)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("jitter produced one delay across 8 rates; retries would synchronize")
	}
}

// TestPointBackoffCancelledContext: a cancelled sweep must not sit out
// its backoff — the wait aborts immediately and reports false so the
// caller stops retrying.
func TestPointBackoffCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	// Attempt 20 would wait at least a second if the cancellation were
	// ignored.
	if pointBackoff(ctx, 20, 0.05) {
		t.Fatal("pointBackoff returned true under a cancelled context")
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("cancelled backoff waited %v, want an immediate return", waited)
	}
}

// TestPointBackoffCancelledMidWait cancels while the backoff timer is
// pending and requires the same early false.
func TestPointBackoffCancelledMidWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if pointBackoff(ctx, 20, 0.05) {
		t.Fatal("pointBackoff returned true after mid-wait cancellation")
	}
}
