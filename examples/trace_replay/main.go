// Trace replay: drive the simulator with an explicit communication trace
// instead of a synthetic pattern — the paper notes Orion "can be
// interfaced with actual communication traces for more realistic results"
// (Section 4.3).
//
// This example synthesises a bursty producer/consumer trace (two pipeline
// stages exchanging data every 40 cycles, with a control node polling
// everyone), replays it, and contrasts the resulting power map with plain
// uniform traffic of the same average rate.
package main

import (
	"fmt"
	"log"
	"strings"

	"orion"
)

// makeTrace builds a trace: node 0 streams to node 5, node 5 streams to
// node 10, and node 12 polls every node round-robin.
func makeTrace(cycles int) string {
	var b strings.Builder
	b.WriteString("# cycle src dst\n")
	poll := 0
	for c := 0; c < cycles; c++ {
		if c%8 == 0 {
			fmt.Fprintf(&b, "%d 0 5\n", c)
		}
		if c%8 == 4 {
			fmt.Fprintf(&b, "%d 5 10\n", c)
		}
		if c%40 == 7 {
			if poll%16 != 12 { // skip self
				fmt.Fprintf(&b, "%d 12 %d\n", c, poll%16)
			}
			poll++
		}
	}
	return b.String()
}

func main() {
	cfg := orion.Config{
		Width: 4, Height: 4,
		Router:  orion.RouterConfig{Kind: orion.VirtualChannel, VCs: 2, BufferDepth: 8, FlitBits: 64},
		Link:    orion.LinkConfig{LengthMm: 3},
		Tech:    orion.TechConfig{FreqGHz: 2},
		Traffic: orion.TrafficConfig{PacketLength: 5, Seed: 1},
		Sim:     orion.SimConfig{WarmupCycles: 100, SamplePackets: 4000},
	}

	trace := makeTrace(20000)
	res, err := orion.RunTrace(cfg, strings.NewReader(trace))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace replay: %d packets, avg latency %.1f cycles, %.3f W\n",
		res.SamplePackets, res.AvgLatency, res.TotalPowerW)
	m, err := orion.HeatmapString(res, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-node power (W) — the 0→5→10 pipeline and poller at 12 stand out:")
	fmt.Print(m)

	// Same average load, uniform pattern, for contrast.
	uniform := cfg
	uniform.Traffic.Pattern = orion.Uniform()
	uniform.Traffic.Rate = 0.02
	ures, err := orion.Run(uniform)
	if err != nil {
		log.Fatal(err)
	}
	um, err := orion.HeatmapString(ures, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuniform traffic at a similar average rate — flat by comparison:")
	fmt.Print(um)
}
