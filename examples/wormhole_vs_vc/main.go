// Wormhole vs virtual-channel routers — the paper's first case study
// (Section 4.2): compare the WH64, VC16, VC64 and VC128 configurations of
// an on-chip 4×4 torus across injection rates, simultaneously monitoring
// latency and power, and report each configuration's saturation throughput
// and pre-saturation power.
//
// The paper's observations to look for in the output:
//   - more, smaller virtual channels deliver latency comparable to a big
//     single-queue wormhole buffer at lower power (VC16 vs WH64 power);
//   - VC128's extra buffering costs power without buying throughput over
//     VC64;
//   - power levels off once a configuration saturates.
package main

import (
	"fmt"
	"log"

	"orion"
)

func main() {
	rates := []float64{0.04, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18}
	opt := orion.ExperimentOptions{SamplePackets: 4000, Seed: 7}

	curves, err := orion.Figure5(opt, rates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("on-chip 4x4 torus, 256-bit flits, 2 GHz, uniform random traffic")
	fmt.Printf("%-7s", "rate")
	for _, r := range rates {
		fmt.Printf("  %12.2f", r)
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-7s", c.Label)
		for _, pt := range c.Points {
			if pt.Failed {
				fmt.Printf("  %12s", "--")
				continue
			}
			fmt.Printf("  %6.0fc/%4.1fW", pt.Latency, pt.PowerW)
		}
		fmt.Println()
	}

	fmt.Println()
	for _, c := range curves {
		sat := "not reached"
		if c.Saturated {
			sat = fmt.Sprintf("%.2f pkts/cycle/node", c.SaturationRate)
		}
		// Power at the last common pre-saturation rate (0.10).
		var p10 float64
		for _, pt := range c.Points {
			if pt.Rate == 0.10 && !pt.Failed {
				p10 = pt.PowerW
			}
		}
		fmt.Printf("%-7s zero-load %5.1f cycles | saturation %-22s | power @0.10: %5.2f W\n",
			c.Label, c.ZeroLoad, sat, p10)
	}
}
