// Central-buffered routers — the paper's third case study (Section 4.4):
// evaluate a new microarchitectural mechanism (a shared central buffer in
// place of the input-buffered crossbar datapath) against the XB baseline,
// on a chip-to-chip 4×4 torus with 32-bit flits at 1 GHz and 3 W
// traffic-insensitive links.
//
// Expected shapes (Figure 7): under uniform random traffic the CB router
// saturates earlier (its shared fabric has 2 read ports against the
// crossbar's 5 outputs) yet consumes more power (a central-buffer access
// swings far more capacitance than an input-buffer access plus crossbar
// traversal); links dominate both routers' power, unlike on-chip networks.
package main

import (
	"fmt"
	"log"

	"orion"
)

func main() {
	opt := orion.ExperimentOptions{SamplePackets: 4000, Seed: 3}
	rates := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}

	curves, err := orion.Figure7(opt, rates, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("chip-to-chip 4x4 torus, 32-bit flits, 1 GHz, 3 W links, uniform random")
	fmt.Printf("%-4s", "rate")
	for _, r := range rates {
		fmt.Printf(" %14.2f", r)
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-4s", c.Label)
		for _, pt := range c.Points {
			if pt.Failed {
				fmt.Printf(" %14s", "--")
				continue
			}
			fmt.Printf(" %6.0fc/%6.2fW", pt.Latency, pt.PowerW)
		}
		if c.Saturated {
			fmt.Printf("   saturates at %.2f", c.SaturationRate)
		}
		fmt.Println()
	}

	xb, cb, err := orion.Figure7Breakdowns(opt, 0.06)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomponent breakdown at rate 0.06:")
	for _, e := range []struct {
		name string
		res  *orion.Result
	}{{"XB", xb}, {"CB", cb}} {
		b := e.res.Breakdown
		t := e.res.TotalPowerW
		fmt.Printf("  %-3s total %7.2f W: links %5.1f%%, input buffers %5.2f%%, central buffer %5.2f%%, crossbar %5.2f%%\n",
			e.name, t, 100*b.LinkW/t, 100*b.BufferW/t, 100*b.CentralBufferW/t, 100*b.CrossbarW/t)
	}

	// Router-only power (links excluded) isolates the paper's
	// "central buffer consumes much more energy than a crossbar" claim.
	xbRouter := xb.TotalPowerW - xb.Breakdown.LinkW
	cbRouter := cb.TotalPowerW - cb.Breakdown.LinkW
	fmt.Printf("\nrouter-only power: XB %.3f W vs CB %.3f W (%.1f× higher for CB)\n",
		xbRouter, cbRouter, cbRouter/xbRouter)
}
