// Traffic patterns — the paper's second case study (Section 4.3): fix the
// router microarchitecture (2 VCs × 8 flits) and vary the communication
// workload, observing the power spatial distribution across the 4×4 torus.
//
// Uniform random traffic yields a flat power map; broadcast from node
// (1,2) concentrates power at the source and decays with Manhattan
// distance, with the y-first dimension-ordered routing making the source's
// column hotter than its row. Beyond the paper's two workloads, this
// example also runs the classic tornado and hotspot patterns.
package main

import (
	"fmt"
	"log"

	"orion"
)

func base() orion.Config {
	cfg := orion.OnChip4x4(orion.VC16(), 0)
	cfg.Sim.SamplePackets = 4000
	return cfg
}

func show(name string, res *orion.Result) {
	fmt.Printf("-- %s --\n", name)
	fmt.Printf("   avg latency %.1f cycles, total power %.2f W\n", res.AvgLatency, res.TotalPowerW)
	m, err := orion.HeatmapString(res, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   per-node power (W), (0,0) bottom-left:")
	for _, line := range splitLines(m) {
		fmt.Println("   " + line)
	}
}

func main() {
	// Both paper workloads inject 0.2 packets/cycle network-wide.
	uniform := base()
	uniform.Traffic.Pattern = orion.Uniform()
	uniform.Traffic.Rate = 0.2 / 16
	res, err := orion.Run(uniform)
	if err != nil {
		log.Fatal(err)
	}
	show("uniform random (total 0.2 pkt/cycle)", res)

	broadcast := base()
	broadcast.Traffic.Pattern = orion.BroadcastFrom(orion.BroadcastNode12)
	broadcast.Traffic.Rate = 0.2
	res, err = orion.Run(broadcast)
	if err != nil {
		log.Fatal(err)
	}
	show("broadcast from node (1,2) at 0.2 pkt/cycle", res)

	tornado := base()
	tornado.Traffic.Pattern = orion.Pattern{Kind: orion.PatternTornado}
	tornado.Traffic.Rate = 0.0125
	res, err = orion.Run(tornado)
	if err != nil {
		log.Fatal(err)
	}
	show("tornado (halfway around each row)", res)

	hotspot := base()
	hotspot.Traffic.Pattern = orion.Pattern{Kind: orion.PatternHotspot, Source: 5, Fraction: 0.3}
	hotspot.Traffic.Rate = 0.0125
	res, err = orion.Run(hotspot)
	if err != nil {
		log.Fatal(err)
	}
	show("hotspot (30% of traffic to node (1,1))", res)
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
