// Quickstart: simulate the paper's on-chip 4×4 torus with a 2-VC
// virtual-channel router at 10% injection, and print performance and power.
package main

import (
	"fmt"
	"log"

	"orion"
)

func main() {
	cfg := orion.Config{
		Width: 4, Height: 4, // the paper's 16-node torus (Figure 4)
		Router: orion.RouterConfig{
			Kind:        orion.VirtualChannel,
			VCs:         2,
			BufferDepth: 8,   // flits per VC
			FlitBits:    256, // the paper's on-chip flit width
		},
		Link: orion.LinkConfig{LengthMm: 3}, // 3 mm on-chip links (1.08 pF)
		Tech: orion.TechConfig{FreqGHz: 2},  // 0.1 µm, 1.2 V by default
		Traffic: orion.TrafficConfig{
			Pattern:      orion.Uniform(),
			Rate:         0.10, // packets/cycle/node
			PacketLength: 5,    // 1 head + 4 data flits
		},
	}

	res, err := orion.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("avg latency:  %.1f cycles over %d packets\n", res.AvgLatency, res.SamplePackets)
	fmt.Printf("throughput:   %.3f flits/node/cycle accepted\n", res.AcceptedFlitsPerNodeCycle)
	fmt.Printf("total power:  %.2f W\n", res.TotalPowerW)
	b := res.Breakdown
	fmt.Printf("breakdown:    buffers %.1f%%, crossbars %.1f%%, arbiters %.2f%%, links %.1f%%\n",
		100*b.BufferW/res.TotalPowerW,
		100*b.CrossbarW/res.TotalPowerW,
		100*b.ArbiterW/res.TotalPowerW,
		100*b.LinkW/res.TotalPowerW)

	zl, err := orion.ZeroLoadLatency(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zero-load:    %.1f cycles (saturation = rate where latency exceeds %.1f)\n", zl, 2*zl)
}
