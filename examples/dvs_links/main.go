// Link dynamic voltage scaling — the first architectural study Orion
// enabled (Shang, Peh & Jha [17], cited in the paper's related work):
// links monitor their utilisation over a history window and step voltage
// and frequency down when lightly used.
//
// This example sweeps injection rates with and without link DVS and prints
// the link-power saving against the latency cost at each point: large
// savings at low load, converging to the plain network as load grows and
// the controllers step back up.
package main

import (
	"fmt"
	"log"

	"orion"
)

func main() {
	rates := []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12}

	base := orion.OnChip4x4(orion.VC16(), 0)
	base.Sim.SamplePackets = 4000

	dvs := base
	dvs.Link.DVS = &orion.DVSPolicy{
		// Full, 80 % and 60 % voltage with proportional bandwidth.
		Levels: []orion.DVSLevel{
			{VddScale: 1.0, SpeedScale: 1.0},
			{VddScale: 0.8, SpeedScale: 0.75},
			{VddScale: 0.6, SpeedScale: 0.5},
		},
		WindowCycles: 256,
		UpUtil:       0.6,
		DownUtil:     0.25,
	}

	plain, err := orion.Sweep(base, rates)
	if err != nil {
		log.Fatal(err)
	}
	scaled, err := orion.Sweep(dvs, rates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("on-chip 4x4 torus, VC16, uniform random; link DVS vs plain links")
	fmt.Printf("%8s %16s %16s %14s %14s\n",
		"rate", "link power (W)", "with DVS (W)", "saving", "latency cost")
	for i := range rates {
		p, s := plain[i], scaled[i]
		if p == nil || s == nil {
			fmt.Printf("%8.2f %16s %16s %14s %14s\n", rates[i], "--", "--", "--", "--")
			continue
		}
		saving := 100 * (1 - s.Breakdown.LinkW/p.Breakdown.LinkW)
		cost := s.AvgLatency - p.AvgLatency
		fmt.Printf("%8.2f %16.3f %16.3f %13.1f%% %+11.1f cy\n",
			rates[i], p.Breakdown.LinkW, s.Breakdown.LinkW, saving, cost)
	}
}
